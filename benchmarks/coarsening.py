"""Coarsening kernel benchmark: flat-array pipeline vs. the references.

Times the three coarsening stages (heavy-edge matching, random matching,
contraction) plus whole-hierarchy construction, kernel
(``repro.partition.matching`` / ``repro.hypergraph.contraction``) against
the retained references (``matching_reference`` /
``contraction_reference``), and an end-to-end multilevel comparison of
the full kernel stack (kernel coarsening + flat FM + pooled engines)
against the full reference stack (reference coarsening + reference FM,
fresh engine per level).  For every comparison it

* asserts the results are bit-identical (labels, coarse CSR buffers,
  weights, areas, fixtures, final cuts and partition vectors);
* measures wall time per side and reports per-stage and aggregate
  speedups;
* writes everything to ``BENCH_coarsening.json``.

The exit status reflects only the determinism contract (0 iff every
comparison was identical); the speedups are recorded, not gated, so the
benchmark stays useful on starved CI machines.

Not collected by pytest (no ``test_`` prefix); run directly:

    PYTHONPATH=src python benchmarks/coarsening.py [out.json] [ci|quick|full]

``ci`` runs two small instances (the determinism gate for continuous
integration); ``quick`` is the default local profile; ``full`` adds a
larger circuit.
"""

from __future__ import annotations

import gc
import json
import platform
import random
import sys
import time
from typing import Dict, List, Tuple

from repro.hypergraph import contraction_reference
from repro.hypergraph.contraction import contract
from repro.hypergraph.generators import (
    CircuitSpec,
    clustered_hypergraph,
    generate_circuit,
    grid_hypergraph,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.partition import matching_reference
from repro.partition.fm import FMConfig
from repro.partition.fm_reference import ReferenceFMBipartitioner
from repro.partition.matching import (
    CoarseLevel,
    heavy_edge_matching,
    random_matching,
)
from repro.partition.multilevel import (
    MultilevelBipartitioner,
    MultilevelConfig,
)
from repro.partition.solution import FREE

FIXED_FRACTIONS = (0.0, 0.2, 0.5)
MATCH_SEEDS = (11, 12, 13)
"""Seeds per stage entry; each timed call consumes one fresh rng."""


def _instances(profile: str) -> List[Tuple[str, Hypergraph]]:
    """Generated benchmark instances, smallest first."""
    if profile == "ci":
        return [
            ("grid-24x24", grid_hypergraph(24, 24)),
            (
                "circuit-600",
                generate_circuit(CircuitSpec(num_cells=600), seed=5).graph,
            ),
        ]
    out: List[Tuple[str, Hypergraph]] = [
        ("grid-32x32", grid_hypergraph(32, 32)),
        (
            "clustered-24x30",
            clustered_hypergraph(
                num_clusters=24,
                cluster_size=30,
                intra_nets=60,
                inter_nets=40,
                seed=11,
            ),
        ),
        (
            "circuit-1500",
            generate_circuit(CircuitSpec(num_cells=1500), seed=5).graph,
        ),
        (
            "circuit-4000",
            generate_circuit(CircuitSpec(num_cells=4000), seed=7).graph,
        ),
    ]
    if profile == "full":
        out.append(
            (
                "circuit-8000",
                generate_circuit(CircuitSpec(num_cells=8000), seed=9).graph,
            )
        )
    return out


def _fixture(graph: Hypergraph, fraction: float, seed: int) -> List[int]:
    rng = random.Random(seed)
    fixture = [FREE] * graph.num_vertices
    if fraction > 0.0:
        for v in range(graph.num_vertices):
            if rng.random() < fraction:
                fixture[v] = rng.randrange(2)
    return fixture


def _coarse_fingerprint(contraction) -> Tuple:
    """Everything result-bearing in a Contraction, as raw buffer bytes."""
    buffers = contraction.coarse.to_buffers()
    return (
        buffers["num_vertices"],
        buffers["net_ptr"].tobytes(),
        buffers["net_pins"].tobytes(),
        buffers["vtx_ptr"].tobytes(),
        buffers["vtx_nets"].tobytes(),
        buffers["areas"].tobytes(),
        buffers["net_weights"].tobytes(),
        tuple(contraction.fine_to_coarse),
    )


def _hierarchy_fingerprint(levels: List[CoarseLevel]) -> Tuple:
    return tuple(
        _coarse_fingerprint(level.contraction) + (tuple(level.fixture),)
        for level in levels
    )


def _multilevel_fingerprint(result) -> Tuple:
    return (
        result.solution.cut,
        tuple(result.solution.parts),
        result.num_levels,
        result.coarsest_vertices,
        result.refinement_passes,
    )


REPS = 5
"""Timing repetitions per side; the minimum is reported (the standard
noise-robust estimator -- both sides are deterministic, so repeated runs
do identical work and the minimum is the least-perturbed one)."""


def _time_runs(run_all, reps: int = REPS) -> Tuple[float, list]:
    """Minimum wall time of ``reps`` executions of ``run_all``."""
    best = float("inf")
    results = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(reps):
            t0 = time.perf_counter()
            results = run_all()
            elapsed = time.perf_counter() - t0
            if elapsed < best:
                best = elapsed
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, results


def _entry(
    stage: str,
    scheme: str,
    fraction: float,
    ref_seconds: float,
    kernel_seconds: float,
    identical: bool,
) -> Dict:
    return {
        "stage": stage,
        "scheme": scheme,
        "fixed_fraction": fraction,
        "reference_seconds": round(ref_seconds, 4),
        "kernel_seconds": round(kernel_seconds, 4),
        "speedup": round(ref_seconds / kernel_seconds, 3)
        if kernel_seconds > 0
        else 0.0,
        "results_identical": identical,
    }


def _bench_matching(
    graph: Hypergraph, scheme: str, fraction: float
) -> Dict:
    """Time reference vs. kernel matching over identical fresh rngs."""
    fixture = _fixture(graph, fraction, seed=7)
    max_cluster_area = 0.04 * graph.total_area

    if scheme == "heavy":
        kernel_fn = heavy_edge_matching
        ref_fn = matching_reference.heavy_edge_matching
    else:
        kernel_fn = random_matching
        ref_fn = matching_reference.random_matching

    ref_seconds, ref_labels = _time_runs(
        lambda: [
            ref_fn(
                graph,
                fixture=fixture,
                rng=random.Random(seed),
                max_cluster_area=max_cluster_area,
            )
            for seed in MATCH_SEEDS
        ]
    )
    kernel_seconds, kernel_labels = _time_runs(
        lambda: [
            kernel_fn(
                graph,
                fixture=fixture,
                rng=random.Random(seed),
                max_cluster_area=max_cluster_area,
                num_parts=2,
            )
            for seed in MATCH_SEEDS
        ]
    )
    identical = ref_labels == kernel_labels
    return _entry(
        "matching", scheme, fraction, ref_seconds, kernel_seconds, identical
    )


def _bench_contraction(graph: Hypergraph, fraction: float) -> Dict:
    """Time reference vs. kernel contraction over identical labelings."""
    fixture = _fixture(graph, fraction, seed=7)
    max_cluster_area = 0.04 * graph.total_area
    labelings = [
        matching_reference.heavy_edge_matching(
            graph,
            fixture=fixture,
            rng=random.Random(seed),
            max_cluster_area=max_cluster_area,
        )
        for seed in MATCH_SEEDS
    ]

    ref_seconds, ref_results = _time_runs(
        lambda: [
            contraction_reference.contract(graph, labels)
            for labels in labelings
        ]
    )
    kernel_seconds, kernel_results = _time_runs(
        lambda: [contract(graph, labels) for labels in labelings]
    )
    identical = all(
        _coarse_fingerprint(r) == _coarse_fingerprint(k)
        for r, k in zip(ref_results, kernel_results)
    )
    return _entry(
        "contraction", "-", fraction, ref_seconds, kernel_seconds, identical
    )


class _ReferenceMultilevel(MultilevelBipartitioner):
    """The multilevel driver running the full reference stack: reference
    matchers, reference contraction, and a fresh reference FM engine per
    level per start (the pre-pool allocation pattern)."""

    def _match(self, graph, fixture, rng, max_cluster_area):
        if self.config.matching == "heavy":
            return matching_reference.heavy_edge_matching(
                graph,
                fixture=fixture,
                rng=rng,
                max_cluster_area=max_cluster_area,
            )
        return matching_reference.random_matching(
            graph,
            fixture=fixture,
            rng=rng,
            max_cluster_area=max_cluster_area,
        )

    def _coarsen(self, graph, fixture, labels):
        return matching_reference.coarsen(graph, fixture, labels)

    def _flat_engine(self, graph, fixture):
        cfg = self.config
        return ReferenceFMBipartitioner(
            graph,
            self.balance,
            fixture=fixture,
            config=FMConfig(
                policy=cfg.refine_policy,
                pass_move_limit_fraction=cfg.pass_move_limit_fraction,
            ),
        )


def _bench_hierarchy(
    graph: Hypergraph, scheme: str, fraction: float
) -> Dict:
    """Time whole-hierarchy construction, kernel vs. reference."""
    fixture = _fixture(graph, fraction, seed=7)
    config = MultilevelConfig(matching=scheme)
    kernel_driver = MultilevelBipartitioner(
        graph, fixture=fixture, config=config
    )
    ref_driver = _ReferenceMultilevel(graph, fixture=fixture, config=config)

    ref_seconds, ref_levels = _time_runs(
        lambda: [
            ref_driver._build_hierarchy(random.Random(seed))
            for seed in MATCH_SEEDS
        ]
    )
    kernel_seconds, kernel_levels = _time_runs(
        lambda: [
            kernel_driver._build_hierarchy(random.Random(seed))
            for seed in MATCH_SEEDS
        ]
    )
    identical = all(
        _hierarchy_fingerprint(r) == _hierarchy_fingerprint(k)
        for r, k in zip(ref_levels, kernel_levels)
    )
    return _entry(
        "hierarchy", scheme, fraction, ref_seconds, kernel_seconds, identical
    )


def _bench_multilevel_e2e(
    graph: Hypergraph, fraction: float, seeds: Tuple[int, ...]
) -> Dict:
    """End-to-end multilevel: full kernel stack vs. full reference stack.

    Captures the combined coarsening-kernel + FM-kernel + engine-pool
    gain in one number (reference coarsening + reference FM + per-level
    engine allocation on one side; kernel everything on the other).
    """
    fixture = _fixture(graph, fraction, seed=7)
    config = MultilevelConfig()
    kernel_driver = MultilevelBipartitioner(
        graph, fixture=fixture, config=config
    )
    ref_driver = _ReferenceMultilevel(graph, fixture=fixture, config=config)

    ref_seconds, ref_results = _time_runs(
        lambda: [ref_driver.run(seed) for seed in seeds]
    )
    kernel_seconds, kernel_results = _time_runs(
        lambda: [kernel_driver.run(seed) for seed in seeds]
    )
    identical = all(
        _multilevel_fingerprint(r) == _multilevel_fingerprint(k)
        for r, k in zip(ref_results, kernel_results)
    )
    entry = _entry(
        "multilevel-e2e",
        "heavy",
        fraction,
        ref_seconds,
        kernel_seconds,
        identical,
    )
    entry["starts"] = len(seeds)
    entry["cuts"] = [r.solution.cut for r in kernel_results]
    return entry


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    out_path = args[0] if args else "BENCH_coarsening.json"
    profile = args[1] if len(args) > 1 else "quick"
    if profile not in ("ci", "quick", "full"):
        raise SystemExit(f"unknown profile {profile!r}; use ci|quick|full")
    fractions = (0.0, 0.2) if profile == "ci" else FIXED_FRACTIONS
    e2e_seeds = {"ci": (0,), "quick": (0, 1), "full": (0, 1, 2)}[profile]

    stage_entries = []
    e2e_entries = []
    for name, graph in _instances(profile):
        print(
            f"{name}: {graph.num_vertices} vertices, "
            f"{graph.num_nets} nets, {graph.num_pins} pins"
        )
        for fraction in fractions:
            for scheme in ("heavy", "random"):
                entry = _bench_matching(graph, scheme, fraction)
                entry["instance"] = name
                stage_entries.append(entry)
                print(
                    f"  matching/{scheme} fixed={int(100 * fraction)}%: "
                    f"{entry['reference_seconds']:.2f}s -> "
                    f"{entry['kernel_seconds']:.2f}s "
                    f"({entry['speedup']:.2f}x, identical="
                    f"{entry['results_identical']})"
                )
            entry = _bench_contraction(graph, fraction)
            entry["instance"] = name
            stage_entries.append(entry)
            print(
                f"  contraction fixed={int(100 * fraction)}%: "
                f"{entry['reference_seconds']:.2f}s -> "
                f"{entry['kernel_seconds']:.2f}s "
                f"({entry['speedup']:.2f}x, identical="
                f"{entry['results_identical']})"
            )
        # Whole-hierarchy construction exercises the kernels at every
        # level (where graphs shrink and per-call overhead matters) plus
        # guard-free fixture propagation; one fraction per scheme keeps
        # the profile bounded.
        for scheme in ("heavy", "random"):
            entry = _bench_hierarchy(graph, scheme, 0.2)
            entry["instance"] = name
            stage_entries.append(entry)
            print(
                f"  hierarchy/{scheme} fixed=20%: "
                f"{entry['reference_seconds']:.2f}s -> "
                f"{entry['kernel_seconds']:.2f}s "
                f"({entry['speedup']:.2f}x, identical="
                f"{entry['results_identical']})"
            )
        entry = _bench_multilevel_e2e(graph, 0.2, e2e_seeds)
        entry["instance"] = name
        e2e_entries.append(entry)
        print(
            f"  multilevel-e2e fixed=20%: "
            f"{entry['reference_seconds']:.2f}s -> "
            f"{entry['kernel_seconds']:.2f}s "
            f"({entry['speedup']:.2f}x, identical="
            f"{entry['results_identical']})"
        )

    ref_total = sum(e["reference_seconds"] for e in stage_entries)
    kernel_total = sum(e["kernel_seconds"] for e in stage_entries)
    e2e_ref = sum(e["reference_seconds"] for e in e2e_entries)
    e2e_kernel = sum(e["kernel_seconds"] for e in e2e_entries)
    entries = stage_entries + e2e_entries
    identical = all(e["results_identical"] for e in entries)
    speedup = ref_total / kernel_total if kernel_total > 0 else 0.0
    e2e_speedup = e2e_ref / e2e_kernel if e2e_kernel > 0 else 0.0
    print(
        f"coarsening stages: {ref_total:.2f}s reference, "
        f"{kernel_total:.2f}s kernel -> {speedup:.2f}x speedup"
    )
    print(
        f"end-to-end multilevel (reference stack vs kernel stack): "
        f"{e2e_ref:.2f}s -> {e2e_kernel:.2f}s "
        f"({e2e_speedup:.2f}x), identical={identical}"
    )

    payload = {
        "benchmark": "coarsening-kernel vs reference",
        "profile": profile,
        "python": platform.python_version(),
        "reference_total_seconds": round(ref_total, 3),
        "kernel_total_seconds": round(kernel_total, 3),
        "speedup": round(speedup, 3),
        "e2e_reference_total_seconds": round(e2e_ref, 3),
        "e2e_kernel_total_seconds": round(e2e_kernel, 3),
        "e2e_speedup": round(e2e_speedup, 3),
        "results_identical": identical,
        "entries": entries,
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out_path}")

    return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
