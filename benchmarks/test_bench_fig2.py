"""Benchmark: regenerate Figure 2 (IBM03-analogue difficulty study)."""

from repro.core.difficulty import format_study
from repro.experiments.figures import run_figure, shape_checks
from repro.experiments.reporting import emit


def test_bench_fig2(benchmark, profile):
    study = benchmark.pedantic(
        run_figure,
        args=("fig2", profile),
        kwargs={"seed": 2},
        rounds=1,
        iterations=1,
    )
    emit(format_study(study), name=f"bench_fig2_{profile}", quiet=True)
    failures = [label for label, ok in shape_checks(study) if not ok]
    assert not failures, failures
