"""Ablation benchmarks for the design choices DESIGN.md calls out.

* CLIP vs LIFO vs FIFO tie-breaking in flat FM (the paper: "using LIFO
  FM instead of CLIP FM results in very similar results");
* V-cycling on/off in the multilevel engine (the paper: a net loss in
  cost-runtime profile -- we assert it is at least not a big win);
* heavy-edge vs random matching (heavy-edge should win on cut);
* the Section V terminal-clustering transform (solution quality should
  be essentially unchanged on the clustered instance).
"""

import random
import statistics

from repro.core import cluster_terminals
from repro.experiments.circuits import load_instance
from repro.experiments.reporting import emit
from repro.partition import (
    FREE,
    FMConfig,
    MultilevelConfig,
    cut_size,
    flat_fm_multistart,
    multilevel_multistart,
)

STARTS = 4


def _fixture_with_terminals(graph, fraction, seed):
    rng = random.Random(seed)
    fixture = [FREE] * graph.num_vertices
    for v in rng.sample(
        range(graph.num_vertices), int(fraction * graph.num_vertices)
    ):
        fixture[v] = rng.randrange(2)
    return fixture


def test_bench_ablation_clip(benchmark):
    """Flat FM policies on the quick circuit: CLIP ~ LIFO ~ FIFO."""
    circuit, balance = load_instance("quick01")

    def run():
        cuts = {}
        for policy in ("lifo", "fifo", "clip"):
            result = flat_fm_multistart(
                circuit.graph,
                balance,
                config=FMConfig(policy=policy),
                num_starts=STARTS,
                seed=11,
            )
            cuts[policy] = result.best().cut
        return cuts

    cuts = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "\n".join(f"{p:>5s}: best cut {c}" for p, c in cuts.items()),
        name="bench_ablation_clip",
        quiet=True,
    )
    # The paper: "using LIFO FM instead of CLIP FM results in very
    # similar results" -- LIFO and CLIP land within 2x of each other.
    # FIFO is excluded: it is known to be substantially worse (Hagen,
    # Huang & Kahng 1997), which this ablation typically also shows.
    lifo, clip = cuts["lifo"], cuts["clip"]
    assert max(lifo, clip) <= 2.0 * min(lifo, clip) + 8
    assert cuts["fifo"] >= min(lifo, clip)


def test_bench_ablation_vcycle(benchmark):
    """V-cycling: never a large quality win (the paper drops it)."""
    circuit, balance = load_instance("quick01")

    def run():
        base = multilevel_multistart(
            circuit.graph,
            balance,
            config=MultilevelConfig(vcycles=0),
            num_starts=2,
            seed=12,
        )
        vcycled = multilevel_multistart(
            circuit.graph,
            balance,
            config=MultilevelConfig(vcycles=1),
            num_starts=2,
            seed=12,
        )
        return base, vcycled

    base, vcycled = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        f"no v-cycle: cut {base.best().cut} in "
        f"{base.total_seconds():.2f}s\n"
        f"1 v-cycle : cut {vcycled.best().cut} in "
        f"{vcycled.total_seconds():.2f}s",
        name="bench_ablation_vcycle",
        quiet=True,
    )
    # V-cycling refines an existing solution so it cannot be worse per
    # start, but it must pay extra runtime...
    assert vcycled.total_seconds() > base.total_seconds()
    # ...for at most a marginal cut gain (the paper's "net loss" call).
    assert vcycled.best().cut >= base.best().cut - max(
        3, int(0.25 * base.best().cut)
    )


def test_bench_ablation_matching(benchmark):
    """Heavy-edge matching beats random matching on average cut."""
    circuit, balance = load_instance("quick01")

    def run():
        outcomes = {}
        for scheme in ("heavy", "random"):
            result = multilevel_multistart(
                circuit.graph,
                balance,
                config=MultilevelConfig(matching=scheme),
                num_starts=STARTS,
                seed=13,
            )
            outcomes[scheme] = statistics.mean(
                s.cut for s in result.starts
            )
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "\n".join(
            f"{scheme:>6s} matching: avg cut {cut:.1f}"
            for scheme, cut in outcomes.items()
        ),
        name="bench_ablation_matching",
        quiet=True,
    )
    assert outcomes["heavy"] <= outcomes["random"] * 1.1 + 2


def test_bench_ablation_terminal_seeding(benchmark):
    """Fixed-terminals-aware initial construction vs random-only starts.

    Probes the paper's closing call ("improved heuristics that
    specifically exploit the fixed-terminals regime"): does seeding the
    coarsest-level construction by terminal propagation beat random
    starts in the good regime?  Finding on these instances: the seeded
    construction is never worse and is essentially free, but multilevel
    CLIP refinement already extracts most of the terminals' signal, so
    the average gain is small -- consistent with the paper's view that
    genuinely better fixed-regime heuristics remain an open problem.
    """
    circuit, balance = load_instance("quick01")
    graph = circuit.graph
    good = multilevel_multistart(
        graph, balance, num_starts=4, seed=16
    ).best()
    fixture = [FREE] * graph.num_vertices
    rng = random.Random(17)
    for v in rng.sample(
        range(graph.num_vertices), int(0.25 * graph.num_vertices)
    ):
        fixture[v] = good.parts[v]

    def run():
        outcomes = {}
        for label, seeded in (("seeded", True), ("random-only", False)):
            result = multilevel_multistart(
                graph,
                balance,
                fixture=fixture,
                config=MultilevelConfig(terminal_seeded_starts=seeded),
                num_starts=STARTS,
                seed=18,
            )
            outcomes[label] = statistics.mean(
                s.cut for s in result.starts
            )
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        f"good-regime instance, 25% fixed (reference cut "
        f"{good.cut}):\n"
        + "\n".join(
            f"  {label:<12s}: avg cut {cut:.1f}"
            for label, cut in outcomes.items()
        ),
        name="bench_ablation_terminal_seeding",
        quiet=True,
    )
    assert outcomes["seeded"] <= outcomes["random-only"] * 1.02 + 1


def test_bench_ablation_wirelength_objective(benchmark):
    """Min-cut vs placement-driven wirelength objective (footnote 7).

    On a derived block instance, FM optimising the terminal-propagation
    HPWL model should produce solutions with lower estimated wirelength
    than min-cut FM on the same starts.
    """
    from repro.hypergraph import CircuitSpec, generate_circuit
    from repro.partition import (
        CostFMBipartitioner,
        FMBipartitioner,
        random_balanced_bipartition,
        total_cost,
    )
    from repro.placement import (
        build_suite,
        midline,
        place_circuit,
        terminal_positions_from_placement,
        wirelength_cost_model,
    )

    circuit = generate_circuit(
        CircuitSpec(num_cells=400, name="wl400"), seed=19
    )
    placement = place_circuit(circuit, seed=3)
    suite = build_suite(circuit, "wl400", placement=placement)
    entry = suite.entries[2]
    instance = entry.instance
    original_ids = {
        placement.graph.vertex_name(v): v
        for v in range(placement.graph.num_vertices)
    }
    positions = terminal_positions_from_placement(
        instance, placement.positions, original_ids
    )
    model = wirelength_cost_model(
        instance,
        entry.block,
        positions,
        cutline=midline(entry.block, entry.cut_axis),
        scale=0.1,
    )
    fixture = instance.hard_fixture()

    wl_engine = CostFMBipartitioner(
        instance.graph, instance.balance, model, fixture=fixture
    )
    mc_engine = FMBipartitioner(
        instance.graph, instance.balance, fixture=fixture
    )

    def run():
        polish_costs = []
        mc_costs = []
        for s in range(3):
            init = random_balanced_bipartition(
                instance.graph,
                instance.balance,
                fixture=fixture,
                rng=random.Random(20 + s),
            )
            mc = mc_engine.run(list(init)).solution
            polish = wl_engine.run(list(mc.parts))
            mc_costs.append(
                total_cost(instance.graph, model, mc.parts)
            )
            polish_costs.append(polish.cost)
        return (
            statistics.mean(polish_costs),
            statistics.mean(mc_costs),
        )

    polish_avg, mc_avg = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        f"estimated wirelength of {entry.instance.name} solutions:\n"
        f"  min-cut FM           : {mc_avg:.0f}\n"
        f"  min-cut + WL polish  : {polish_avg:.0f}",
        name="bench_ablation_wirelength_objective",
        quiet=True,
    )
    # The polish starts from the min-cut solution, so it can only
    # improve (or keep) the placement objective.
    assert polish_avg <= mc_avg


def test_bench_ablation_terminal_clustering(benchmark):
    """Partitioning the 2-terminal clustered instance is as easy as the
    original many-terminal instance (Section V's equivalence)."""
    circuit, balance = load_instance("quick01")
    graph = circuit.graph
    fixture = _fixture_with_terminals(graph, 0.3, seed=14)
    clustered = cluster_terminals(graph, fixture)

    def run():
        original = multilevel_multistart(
            graph, balance, fixture=fixture, num_starts=2, seed=15
        )
        transformed = multilevel_multistart(
            clustered.graph,
            balance,
            fixture=clustered.fixture,
            num_starts=2,
            seed=15,
        )
        return original, transformed

    original, transformed = benchmark.pedantic(run, rounds=1, iterations=1)
    lifted = clustered.lift_partition(transformed.best().parts)
    emit(
        f"original instance : cut {original.best().cut}\n"
        f"clustered instance: cut {transformed.best().cut} "
        f"(lifted cut {cut_size(graph, lifted)})",
        name="bench_ablation_terminal_clustering",
        quiet=True,
    )
    assert cut_size(graph, lifted) == transformed.best().cut
    # "Just as easy or hard as the original instance."
    assert transformed.best().cut <= original.best().cut * 1.35 + 5
    assert original.best().cut <= transformed.best().cut * 1.35 + 5
