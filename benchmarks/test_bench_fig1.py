"""Benchmark: regenerate Figure 1 (IBM01-analogue difficulty study).

Emits the six-plot data (raw cut / normalized cut / CPU x good / rand,
traces for each start count) and asserts the paper's qualitative shapes:
rand raw cut rises steeply with fixed%, multistart gaps shrink, >=20%
fixed is solvable in one start, CPU falls with fixed%.
"""

from repro.core.difficulty import format_study
from repro.experiments.figures import run_figure, shape_checks
from repro.experiments.reporting import emit


def test_bench_fig1(benchmark, profile):
    study = benchmark.pedantic(
        run_figure,
        args=("fig1", profile),
        kwargs={"seed": 1},
        rounds=1,
        iterations=1,
    )
    emit(format_study(study), name=f"bench_fig1_{profile}", quiet=True)
    failures = [label for label, ok in shape_checks(study) if not ok]
    assert not failures, failures
