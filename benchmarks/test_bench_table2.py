"""Benchmark: regenerate Table II (LIFO-FM pass statistics)."""

from repro.experiments.reporting import emit
from repro.experiments.table2 import run_table2, shape_checks


def test_bench_table2(benchmark, profile):
    studies = benchmark.pedantic(
        run_table2,
        args=(profile,),
        kwargs={"seed": 3},
        rounds=1,
        iterations=1,
    )
    text = "\n\n".join(s.format_table() for s in studies.values())
    emit(text, name=f"bench_table2_{profile}", quiet=True)
    for study in studies.values():
        failures = [label for label, ok in shape_checks(study) if not ok]
        assert not failures, failures
