"""FM kernel benchmark: flat-array kernel vs. the retained reference.

Runs the 2-way FM engines (kernel: ``repro.partition.fm``, reference:
``repro.partition.fm_reference``) and the k-way pair over generated
instances with several fixed-vertex fractions, with ``record_moves``
on for both sides, and

* asserts the results are bit-identical (cuts, parts, pass records and
  full pre-rollback move sequences);
* measures total FM wall time per side and reports the speedup plus
  moves/second and mean per-pass milliseconds;
* writes everything to ``BENCH_fm_kernel.json``.

The exit status reflects only the determinism contract (0 iff every
comparison was identical); the speedup is recorded, not gated, so the
benchmark stays useful on starved CI machines.

Not collected by pytest (no ``test_`` prefix); run directly:

    PYTHONPATH=src python benchmarks/fm_kernel.py [out.json] [ci|quick|full]

``ci`` runs two small instances with 2 starts (the determinism gate for
continuous integration); ``quick`` is the default local profile; ``full``
adds the larger circuits.
"""

from __future__ import annotations

import gc
import json
import platform
import random
import sys
import time
from typing import Dict, List, Tuple

from repro.hypergraph.generators import (
    CircuitSpec,
    clustered_hypergraph,
    generate_circuit,
    grid_hypergraph,
    random_k_uniform,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.balance import (
    relative_balance,
    relative_bipartition_balance,
)
from repro.partition.fm import FMBipartitioner, FMConfig
from repro.partition.fm_reference import (
    ReferenceFMBipartitioner,
    ReferenceKWayFMRefiner,
)
from repro.partition.kwayfm import KWayFMConfig, KWayFMRefiner
from repro.partition.solution import FREE

FIXED_FRACTIONS = (0.0, 0.2)


def _instances(profile: str) -> List[Tuple[str, Hypergraph]]:
    """Generated benchmark instances, smallest first."""
    if profile == "ci":
        # One narrow-net and one tailed-net instance: enough to assert
        # the determinism contract on every push without tying up a
        # shared runner; speedups on CI machines are recorded, not
        # gated.
        return [
            ("grid-24x24", grid_hypergraph(24, 24)),
            (
                "circuit-600",
                generate_circuit(CircuitSpec(num_cells=600), seed=5).graph,
            ),
        ]
    out: List[Tuple[str, Hypergraph]] = [
        ("grid-40x40", grid_hypergraph(40, 40)),
        (
            "clustered-24x30",
            clustered_hypergraph(
                num_clusters=24,
                cluster_size=30,
                intra_nets=60,
                inter_nets=40,
                seed=11,
            ),
        ),
        (
            "circuit-1200",
            generate_circuit(CircuitSpec(num_cells=1200), seed=5).graph,
        ),
        # Wide nets (8 pins each): the regime where the kernel's O(1)
        # id-sum single-pin update beats the reference's epins scan.
        # Sized to carry weight comparable to the narrow-net instances;
        # real netlists (e.g. ISPD-98) have exactly this kind of
        # high-fanout tail next to their 2-3 pin nets.
        (
            "uniform8-2400",
            random_k_uniform(2400, 1600, 8, seed=3),
        ),
        # Bus-heavy synthetic circuit: the same tailed net-size model as
        # circuit-1200 but with a longer tail (cap 24) and higher pin
        # density, matching bus/high-fanout-rich netlists.
        (
            "circuit-1500-wide",
            generate_circuit(
                CircuitSpec(
                    num_cells=1500, pins_per_cell=4.5, net_size_cap=24
                ),
                seed=13,
            ).graph,
        ),
    ]
    if profile == "full":
        out.append(
            (
                "circuit-4000",
                generate_circuit(CircuitSpec(num_cells=4000), seed=7).graph,
            )
        )
        out.append(
            (
                "circuit-6000-1d",
                generate_circuit(
                    CircuitSpec(num_cells=6000, dimensions=1), seed=9
                ).graph,
            )
        )
    return out


def _fixture(graph: Hypergraph, fraction: float, num_parts: int,
             seed: int) -> List[int]:
    rng = random.Random(seed)
    fixture = [FREE] * graph.num_vertices
    if fraction > 0.0:
        for v in range(graph.num_vertices):
            if rng.random() < fraction:
                fixture[v] = rng.randrange(num_parts)
    return fixture


def _fm_fingerprint(result) -> Tuple:
    """Everything result-bearing in an FMResult."""
    return (
        result.initial_cut,
        result.solution.cut,
        tuple(result.solution.parts),
        tuple(result.passes),
        tuple(tuple(log) for log in result.move_logs),
    )


def _kway_fingerprint(result) -> Tuple:
    return (
        result.initial_cut,
        result.cut,
        tuple(result.parts),
        result.num_passes,
        result.total_moves,
        tuple(result.pass_moves),
        tuple(tuple(log) for log in result.move_logs),
    )


REPS = 3
"""Timing repetitions per engine; the minimum is reported (the standard
noise-robust estimator -- both engines are deterministic, so repeated
runs do identical work and the minimum is the least-perturbed one)."""


def _time_runs(run_all, reps: int = REPS) -> Tuple[float, list]:
    """Minimum wall time of ``reps`` executions of ``run_all``."""
    best = float("inf")
    results = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(reps):
            t0 = time.perf_counter()
            results = run_all()
            elapsed = time.perf_counter() - t0
            if elapsed < best:
                best = elapsed
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, results


def _bench_fm(
    graph: Hypergraph,
    policy: str,
    fraction: float,
    num_starts: int,
    seed: int,
    move_limit_fraction: float = 1.0,
) -> Dict:
    """Time reference vs. kernel 2-way FM over identical starts."""
    balance = relative_bipartition_balance(graph.total_area, 0.1)
    fixture = _fixture(graph, fraction, 2, seed)
    config = FMConfig(
        policy=policy,
        pass_move_limit_fraction=move_limit_fraction,
        record_moves=True,
    )
    rng = random.Random(seed + 1)
    starts = [
        [rng.randint(0, 1) for _ in range(graph.num_vertices)]
        for _ in range(num_starts)
    ]

    ref_engine = ReferenceFMBipartitioner(
        graph, balance, fixture=fixture, config=config
    )
    ref_seconds, ref_results = _time_runs(
        lambda: [ref_engine.run(parts) for parts in starts]
    )

    kernel_engine = FMBipartitioner(
        graph, balance, fixture=fixture, config=config
    )
    kernel_seconds, kernel_results = _time_runs(
        lambda: [kernel_engine.run(parts) for parts in starts]
    )

    identical = all(
        _fm_fingerprint(r) == _fm_fingerprint(k)
        for r, k in zip(ref_results, kernel_results)
    )
    total_moves = sum(r.total_moves for r in kernel_results)
    total_passes = sum(r.num_passes for r in kernel_results)
    return {
        "engine": "fm2",
        "policy": policy,
        "fixed_fraction": fraction,
        "move_limit_fraction": move_limit_fraction,
        "starts": num_starts,
        "cuts": [r.solution.cut for r in kernel_results],
        "total_moves": total_moves,
        "total_passes": total_passes,
        "reference_seconds": round(ref_seconds, 4),
        "kernel_seconds": round(kernel_seconds, 4),
        "speedup": round(ref_seconds / kernel_seconds, 3)
        if kernel_seconds > 0
        else 0.0,
        "kernel_moves_per_second": round(total_moves / kernel_seconds, 1)
        if kernel_seconds > 0
        else 0.0,
        "kernel_ms_per_pass": round(1000.0 * kernel_seconds / total_passes, 3)
        if total_passes
        else 0.0,
        "results_identical": identical,
    }


def _bench_kway(
    graph: Hypergraph,
    num_parts: int,
    fraction: float,
    num_starts: int,
    seed: int,
) -> Dict:
    """Time reference vs. kernel k-way FM over identical starts."""
    balance = relative_balance(graph.total_area, num_parts, 0.15)
    fixture = _fixture(graph, fraction, num_parts, seed)
    config = KWayFMConfig(record_moves=True)
    rng = random.Random(seed + 1)
    starts = [
        (
            [rng.randrange(num_parts) for _ in range(graph.num_vertices)],
            rng.getrandbits(32),
        )
        for _ in range(num_starts)
    ]

    ref_engine = ReferenceKWayFMRefiner(
        graph, balance, fixture=fixture, config=config
    )
    ref_seconds, ref_results = _time_runs(
        lambda: [ref_engine.run(parts, seed=s) for parts, s in starts]
    )

    kernel_engine = KWayFMRefiner(
        graph, balance, fixture=fixture, config=config
    )
    kernel_seconds, kernel_results = _time_runs(
        lambda: [kernel_engine.run(parts, seed=s) for parts, s in starts]
    )

    identical = all(
        _kway_fingerprint(r) == _kway_fingerprint(k)
        for r, k in zip(ref_results, kernel_results)
    )
    total_moves = sum(r.total_moves for r in kernel_results)
    total_passes = sum(r.num_passes for r in kernel_results)
    return {
        "engine": f"kway{num_parts}",
        "policy": "kway",
        "fixed_fraction": fraction,
        "starts": num_starts,
        "cuts": [r.cut for r in kernel_results],
        "total_moves": total_moves,
        "total_passes": total_passes,
        "reference_seconds": round(ref_seconds, 4),
        "kernel_seconds": round(kernel_seconds, 4),
        "speedup": round(ref_seconds / kernel_seconds, 3)
        if kernel_seconds > 0
        else 0.0,
        "kernel_moves_per_second": round(total_moves / kernel_seconds, 1)
        if kernel_seconds > 0
        else 0.0,
        "kernel_ms_per_pass": round(1000.0 * kernel_seconds / total_passes, 3)
        if total_passes
        else 0.0,
        "results_identical": identical,
    }


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    out_path = args[0] if args else "BENCH_fm_kernel.json"
    profile = args[1] if len(args) > 1 else "quick"
    if profile not in ("ci", "quick", "full"):
        raise SystemExit(f"unknown profile {profile!r}; use ci|quick|full")
    num_starts = {"ci": 2, "quick": 3, "full": 5}[profile]

    entries = []
    for name, graph in _instances(profile):
        print(
            f"{name}: {graph.num_vertices} vertices, "
            f"{graph.num_nets} nets, {graph.num_pins} pins"
        )
        for fraction in FIXED_FRACTIONS:
            for policy in ("lifo", "fifo", "clip"):
                entry = _bench_fm(
                    graph, policy, fraction, num_starts, seed=42
                )
                entry["instance"] = name
                entries.append(entry)
                print(
                    f"  fm2/{policy} fixed={int(100 * fraction)}%: "
                    f"{entry['reference_seconds']:.2f}s -> "
                    f"{entry['kernel_seconds']:.2f}s "
                    f"({entry['speedup']:.2f}x, identical="
                    f"{entry['results_identical']})"
                )
        # The paper's Section III pass cutoff: passes after the first
        # stop at a fraction of the movable vertices.  Short passes are
        # where incremental pass state (O(moves undone) restore instead
        # of an O(pins) rebuild) matters most.
        entry = _bench_fm(
            graph, "clip", 0.2, num_starts, seed=42,
            move_limit_fraction=0.1,
        )
        entry["instance"] = name
        entries.append(entry)
        print(
            f"  fm2/clip cutoff=10% fixed=20%: "
            f"{entry['reference_seconds']:.2f}s -> "
            f"{entry['kernel_seconds']:.2f}s "
            f"({entry['speedup']:.2f}x, identical="
            f"{entry['results_identical']})"
        )
        entry = _bench_kway(graph, 4, 0.2, max(2, num_starts - 1), seed=42)
        entry["instance"] = name
        entries.append(entry)
        print(
            f"  kway4 fixed=20%: {entry['reference_seconds']:.2f}s -> "
            f"{entry['kernel_seconds']:.2f}s ({entry['speedup']:.2f}x, "
            f"identical={entry['results_identical']})"
        )

    ref_total = sum(e["reference_seconds"] for e in entries)
    kernel_total = sum(e["kernel_seconds"] for e in entries)
    identical = all(e["results_identical"] for e in entries)
    speedup = ref_total / kernel_total if kernel_total > 0 else 0.0
    print(
        f"total FM wall time: {ref_total:.2f}s reference, "
        f"{kernel_total:.2f}s kernel -> {speedup:.2f}x speedup, "
        f"identical={identical}"
    )

    payload = {
        "benchmark": "fm-kernel vs reference",
        "profile": profile,
        "python": platform.python_version(),
        "reference_total_seconds": round(ref_total, 3),
        "kernel_total_seconds": round(kernel_total, 3),
        "speedup": round(speedup, 3),
        "results_identical": identical,
        "entries": entries,
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out_path}")

    return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
