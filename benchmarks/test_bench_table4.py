"""Benchmark: regenerate Table IV (placement-derived benchmark suite)."""

from repro.experiments.reporting import emit
from repro.experiments.table4 import run_table4, shape_checks
from repro.placement.suite import format_table


def test_bench_table4(benchmark, profile):
    suites = benchmark.pedantic(
        run_table4,
        args=(profile,),
        kwargs={"seed": 5},
        rounds=1,
        iterations=1,
    )
    emit(
        format_table(suites), name=f"bench_table4_{profile}", quiet=True
    )
    failures = [label for label, ok in shape_checks(suites) if not ok]
    assert not failures, failures
