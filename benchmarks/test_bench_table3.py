"""Benchmark: regenerate Table III (pass-cutoff effects on LIFO-FM)."""

from repro.experiments.reporting import emit
from repro.experiments.table3 import run_table3, shape_checks


def test_bench_table3(benchmark, profile):
    studies = benchmark.pedantic(
        run_table3,
        args=(profile,),
        kwargs={"seed": 4},
        rounds=1,
        iterations=1,
    )
    text = "\n\n".join(s.format_table() for s in studies.values())
    emit(text, name=f"bench_table3_{profile}", quiet=True)
    for study in studies.values():
        failures = [label for label, ok in shape_checks(study) if not ok]
        assert not failures, failures
