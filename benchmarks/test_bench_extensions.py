"""Benchmarks for the paper's open questions (Section V extensions).

* multiway: is 4-way partitioning as affected by fixed terminals?
* overconstrained: measure the good-regime interior bump.
* pad regime: fixing identified pads vs the same number of random
  vertices (the paper "could find no difference in any experiment").
"""

import statistics

from repro.core import good_fixture, find_good_solution, make_schedule, pad_schedule
from repro.experiments.circuits import load_instance
from repro.experiments.multiway import (
    run_multiway,
    shape_checks as multiway_checks,
)
from repro.experiments.overconstrained import (
    run_overconstrained,
    shape_checks as overconstrained_checks,
)
from repro.experiments.reporting import emit
from repro.experiments.suite_solutions import (
    run_suite_solutions,
    shape_checks as suite_checks,
)
from repro.partition import multilevel_multistart


def test_bench_multiway(benchmark, profile):
    study = benchmark.pedantic(
        run_multiway,
        args=(profile,),
        kwargs={"seed": 6},
        rounds=1,
        iterations=1,
    )
    emit(
        study.format_table(), name=f"bench_multiway_{profile}", quiet=True
    )
    failures = [label for label, ok in multiway_checks(study) if not ok]
    assert not failures, failures


def test_bench_overconstrained(benchmark, profile):
    report = benchmark.pedantic(
        run_overconstrained,
        args=(profile,),
        kwargs={"seed": 7},
        rounds=1,
        iterations=1,
    )
    emit(
        report.format_report(),
        name=f"bench_overconstrained_{profile}",
        quiet=True,
    )
    failures = [
        label for label, ok in overconstrained_checks(report) if not ok
    ]
    assert not failures, failures


def test_bench_suite_solutions(benchmark, profile):
    """Best-known-solution table for the derived benchmark suite (the
    paper ships its benchmarks with this companion data)."""
    tables = benchmark.pedantic(
        run_suite_solutions,
        args=(profile,),
        kwargs={"seed": 11},
        rounds=1,
        iterations=1,
    )
    emit(
        "\n\n".join(t.format_table() for t in tables),
        name=f"bench_suite_solutions_{profile}",
        quiet=True,
    )
    failures = [
        label
        for table_checks in [suite_checks(tables)]
        for label, ok in table_checks
        if not ok
    ]
    assert not failures, failures


def test_bench_pad_regime(benchmark):
    """Fixing identified pads vs equally many random vertices: the
    paper found the two statistically indistinguishable."""
    circuit, balance = load_instance("quick01")
    graph = circuit.graph
    good = find_good_solution(graph, balance, starts=2, seed=8)
    percent = 100.0 * len(circuit.pad_vertices) / graph.num_vertices

    def run():
        cuts = {}
        for label, schedule in (
            ("pads", pad_schedule(graph, circuit.pad_vertices, seed=9)),
            ("random", make_schedule(graph, seed=9)),
        ):
            fixture = good_fixture(schedule, percent, good.parts)
            outcomes = multilevel_multistart(
                graph, balance, fixture=fixture, num_starts=3, seed=10
            )
            cuts[label] = statistics.mean(
                s.cut for s in outcomes.starts
            )
        return cuts

    cuts = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        f"fixing {percent:.1f}% of vertices (good regime):\n"
        f"  identified pads : avg cut {cuts['pads']:.1f}\n"
        f"  random vertices : avg cut {cuts['random']:.1f}",
        name="bench_pad_regime",
        quiet=True,
    )
    # "No difference in any experiment": same ballpark at these tiny
    # percentages (the pad count caps the percentage well under 10%).
    hi, lo = max(cuts.values()), min(cuts.values())
    assert hi <= 1.6 * lo + 8
