"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (or an
ablation called out in DESIGN.md) and writes its text rendering under
``results/``.  Set ``REPRO_BENCH_PROFILE=full`` for the paper-scale
sweeps (minutes to hours of pure Python); the default ``quick`` profile
keeps the whole suite in a few minutes while preserving every
qualitative shape.
"""

from __future__ import annotations

import os

import pytest


def bench_profile() -> str:
    """The active experiment profile ("quick" or "full")."""
    return os.environ.get("REPRO_BENCH_PROFILE", "quick")


@pytest.fixture(scope="session")
def profile() -> str:
    """Fixture wrapper around :func:`bench_profile`."""
    return bench_profile()
